"""E1 — Power breakdown per Eqn 1 (claim C1: switching > 90%).

Paper (§I, [8]): in well-designed CMOS logic, switching-activity power
accounts for over 90% of total dissipation.  We evaluate Eqn 1 on four
circuit families at the default mid-90s operating point.  A final
column re-evaluates Eqn 1 with *timed* (glitch-inclusive) activities
from the compiled word-parallel engine: the ratio to zero-delay power
is the glitch surcharge that Section III-A.2 attacks.
"""

from repro.bench.profiling import PHASE_EST, PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.generators import (alu_slice, array_multiplier,
                                    comparator, ripple_carry_adder)
from repro.power.glitch import timed_average_power
from repro.power.model import average_power

from conftest import bench_params, emit, scaled

CLAIMS = ("C1",)

CIRCUITS = [
    ("rca16", lambda: ripple_carry_adder(16)),
    ("cmp16", lambda: comparator(16)),
    ("mult6", lambda: array_multiplier(6)),
    ("alu8", lambda: alu_slice(8)),
]


def breakdown_table(vectors=512, seed=1):
    rows = []
    for name, make in CIRCUITS:
        net = make()
        with phase(PHASE_EST):
            rep = average_power(net, num_vectors=vectors, seed=seed)
        with phase(PHASE_SIM):
            timed_rep = timed_average_power(net, vectors, seed=seed)
        rows.append([name, rep.total * 1e6, rep.switching * 1e6,
                     rep.short_circuit * 1e6, rep.leakage * 1e6,
                     rep.switching_fraction,
                     timed_rep.total / rep.total])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(512, quick)
    rows = breakdown_table(vectors=vectors, seed=seed + 1)
    metrics = {}
    for name, total, _sw, _sc, _leak, frac, glitch_x in rows:
        metrics[f"{name}.total_uW"] = total
        metrics[f"{name}.sw_fraction"] = frac
        metrics[f"{name}.glitch_overhead"] = glitch_x
    return {"metrics": metrics, "vectors": vectors}


def bench_power_breakdown(benchmark):
    rows = benchmark(breakdown_table)
    emit("E1: power breakdown (uW)", format_table(
        ["circuit", "total", "switching", "short-circuit", "leakage",
         "sw fraction", "timed/zero-delay"], rows))
    for row in rows:
        assert row[5] > 0.85, f"{row[0]}: switching fraction {row[5]}"
        # Glitches only ever add power, within the paper's rough band.
        assert 1.0 <= row[6] < 2.5, f"{row[0]}: glitch ratio {row[6]}"
