"""E13 — Behavioral synthesis for low power (claim C13, [7]/[33]/[17]).

Three sub-experiments:
  (a) transformation + voltage scaling: tree-height reduction and
      unrolling create slack; scaling V_DD wins quadratically;
  (b) module selection: slower low-power modules on non-critical ops;
  (c) low-power binding: correlated ops share units.
"""

from repro.arch.allocation import bind_operations, profile_operands
from repro.arch.dfg import chained_sum_dfg, fir_dfg
from repro.arch.power_models import default_module_library
from repro.arch.scheduling import list_schedule
from repro.arch.transforms import (transform_and_scale,
                                   tree_height_reduction, unroll)
from repro.bench.profiling import PHASE_OPT, PHASE_SIM, phase
from repro.core.report import format_table

from conftest import bench_params, emit, scaled

CLAIMS = ("C13",)


def voltage_scaling_rows():
    rows = []
    chain = chained_sum_dfg(8)
    thr = tree_height_reduction(chain)
    res = transform_and_scale(chain, thr)
    rows.append(["THR on 8-chain", res.csteps_before, res.csteps_after,
                 res.cap_ratio, res.vdd, res.power_ratio])
    fir = fir_dfg(4)
    fir_thr = tree_height_reduction(fir)
    res2 = transform_and_scale(fir, fir_thr)
    rows.append(["THR on fir4", res2.csteps_before, res2.csteps_after,
                 res2.cap_ratio, res2.vdd, res2.power_ratio])
    # Unrolling: same per-sample critical path here, but block
    # processing amortizes; with 2 samples/invocation CP/sample halves
    # when units are doubled.
    biquad = fir_dfg(3)
    unrolled = unroll(biquad, 2)
    res3 = transform_and_scale(biquad, unrolled,
                               samples_per_invocation=2)
    rows.append(["unroll x2 fir3", res3.csteps_before,
                 res3.csteps_after, res3.cap_ratio, res3.vdd,
                 res3.power_ratio])
    return rows


def module_selection_rows():
    """Automatic selection ([17]): tight latency forces fast modules,
    relaxed latency lets the optimizer buy low-power variants."""
    from repro.arch.selection import select_modules

    lib = default_module_library()
    dfg = fir_dfg(6)
    tight = select_modules(dfg, lib, resources={"add": 2, "mul": 2})
    relaxed = select_modules(dfg, lib, latency_bound=tight.latency * 2,
                             resources={"add": 2, "mul": 2})
    rows = []
    for label, res in [("tight latency", tight),
                       ("2x latency", relaxed)]:
        rows.append([label, res.latency,
                     "+".join(sorted(res.module_names().values())),
                     res.power * 1e6])
    return rows


def register_binding_rows():
    from repro.arch.allocation import bind_registers, profile_values

    dfg = fir_dfg(8)
    sched = list_schedule(dfg, {"mul": 2, "add": 2})
    traces = profile_values(dfg, 64, seed=1)
    naive = bind_registers(dfg, sched, "naive", traces)
    lp = bind_registers(dfg, sched, "low-power", traces)
    return [["naive", naive.num_registers, naive.switching],
            ["low-power", lp.num_registers, lp.switching]]


def binding_rows():
    dfg = fir_dfg(8)
    sched = list_schedule(dfg, {"mul": 2, "add": 2})
    traces = profile_operands(dfg, 64, seed=1)
    naive = bind_operations(dfg, sched, "naive", traces)
    lp = bind_operations(dfg, sched, "low-power", traces)
    return [["naive", naive.switched_capacitance],
            ["low-power", lp.switched_capacitance]]


def rtl_validation_rows(vectors=120):
    """E13e: bind, synthesize to gates, and *measure* — the binding
    cost model validated on actual hardware."""
    import random

    from repro.arch.allocation import profile_operands
    from repro.arch.dfg import DFG
    from repro.arch.rtl import synthesize_datapath
    from repro.power.activity import sequential_activity
    from repro.power.model import power_report

    dfg = DFG("corr")
    x = dfg.add("x", "input")
    y = dfg.add("y", "input")
    for i, (src, cval) in enumerate([(x, 3), (x, 5), (y, 7), (y, 9)]):
        c = dfg.add(f"c{i}", "const", value=float(cval))
        dfg.add(f"m{i}", "mul", [src, c])
    dfg.add("s1", "add", ["m0", "m1"])
    dfg.add("s2", "add", ["m2", "m3"])
    dfg.add("s3", "add", ["s1", "s2"])
    dfg.add("out", "output", ["s3"])
    # Pin the schedule so both units have a real pairing choice
    # (m0/m3 in step 0, m1/m2 in step 2).
    sched = {name: 0 for name in dfg.ops}
    sched.update({"m0": 0, "m3": 0, "m1": 2, "m2": 2,
                  "s1": 4, "s2": 5, "s3": 6, "out": 7})
    traces = profile_operands(dfg, 64, seed=1)
    rows = []
    for strategy in ("worst", "low-power"):
        res = bind_operations(dfg, sched, strategy, traces)
        rtl = synthesize_datapath(dfg, sched, res.binding, width=4)
        net = rtl.network
        rng = random.Random(7)
        vecs = []
        for _ in range(vectors):
            ints = {n: rng.randrange(16) for n in dfg.inputs()}
            vec = {}
            for pi in net.inputs:
                base, bit = pi.rsplit("_", 1)
                vec[pi] = (ints[base] >> int(bit)) & 1
            vecs.extend([vec] * rtl.latency)
        act = sequential_activity(net, vecs)
        p = power_report(net, act).total
        rows.append([strategy, res.switched_capacitance,
                     net.num_gates(), p * 1e6])
    return rows


def run(params=None):
    quick, _seed = bench_params(params)
    vectors = scaled(120, quick, floor=40)
    with phase(PHASE_OPT):
        vrows = voltage_scaling_rows()
        mrows = module_selection_rows()
        brows = binding_rows()
        rrows = register_binding_rows()
    with phase(PHASE_SIM):
        hrows = rtl_validation_rows(vectors=vectors)
    metrics = {}
    for key, (_label, _cb, _ca, _cap, vdd, ratio) in zip(
            ("thr_chain8", "thr_fir4", "unroll_fir3"), vrows):
        metrics[f"scale.{key}.vdd"] = vdd
        metrics[f"scale.{key}.power_ratio"] = ratio
    for key, (_label, latency, _mods, power) in zip(
            ("tight", "relaxed"), mrows):
        metrics[f"select.{key}.latency"] = latency
        metrics[f"select.{key}.power_uW"] = power
    for label, cap in brows:
        metrics[f"fu_bind.{label}.hamming"] = cap
    for label, regs, switching in rrows:
        metrics[f"reg_bind.{label}.registers"] = regs
        metrics[f"reg_bind.{label}.hamming"] = switching
    for label, cost, gates, power in hrows:
        metrics[f"rtl.{label}.model_cost"] = cost
        metrics[f"rtl.{label}.power_uW"] = power
    return {"metrics": metrics, "vectors": vectors}


def bench_behavioral(benchmark):
    rows = benchmark(voltage_scaling_rows)
    emit("E13a: transformations + voltage scaling", format_table(
        ["transform", "csteps before", "csteps after", "cap ratio",
         "vdd", "power ratio"], rows))
    for row in rows:
        assert row[4] < 3.3          # voltage dropped
        assert row[5] < 1.0          # power dropped despite cap

    mrows = module_selection_rows()
    emit("E13b: automatic module selection", format_table(
        ["latency bound", "latency", "modules", "power uW"], mrows))
    assert mrows[1][3] < mrows[0][3]

    brows = binding_rows()
    emit("E13c: FU binding switched capacitance", format_table(
        ["binding", "operand Hamming cost"], brows))
    assert brows[1][1] <= brows[0][1] + 1e-9

    rrows = register_binding_rows()
    emit("E13d: register binding (left-edge)", format_table(
        ["binding", "registers", "value Hamming cost"], rrows))
    assert rrows[1][1] == rrows[0][1]        # same (minimum) count
    assert rrows[1][2] <= rrows[0][2] + 1e-9

    vrows = rtl_validation_rows()
    emit("E13e: binding validated on synthesized gates", format_table(
        ["binding", "model cost", "gates", "measured uW"], vrows))
    worst, lp = vrows
    assert lp[1] < worst[1]          # the model prefers low-power
    assert lp[3] < worst[3]          # ...and the hardware agrees
    assert lp[2] == worst[2]         # same structure, different steering
