"""E7 — Technology mapping for low power (claim C7).

Paper (§III-B, [43]/[48]/[26]): extending DAGON's tree covering to a
power cost function trades area for measurably less power than the
area-driven mapping of the same subject graph.
"""

from repro.bench.profiling import (PHASE_EST, PHASE_OPT, PHASE_VERIFY,
                                   phase)
from repro.core.report import format_table
from repro.library.cells import generic_library
from repro.logic.generators import (comparator, equality_checker,
                                    ripple_carry_adder)
from repro.opt.logic.mapping import tech_map
from repro.power.model import average_power
from repro.sim.functional import verify_equivalence

from conftest import bench_params, emit, scaled

CLAIMS = ("C7",)

CIRCUITS = [
    ("rca6", lambda: ripple_carry_adder(6)),
    ("cmp8", lambda: comparator(8)),
    ("eq8", lambda: equality_checker(8)),
]


def mapping_sweep(vectors=512, verify_vectors=128):
    lib = generic_library()
    rows = []
    for name, make in CIRCUITS:
        net = make()
        with phase(PHASE_OPT):
            res_a = tech_map(net, lib, "area", seed=1)
            res_p = tech_map(net, lib, "power", seed=1)
        with phase(PHASE_VERIFY):
            assert verify_equivalence(net, res_a.mapped,
                                      verify_vectors)
            assert verify_equivalence(net, res_p.mapped,
                                      verify_vectors)
        with phase(PHASE_EST):
            p_area = average_power(res_a.mapped, vectors,
                                   seed=5).total
            p_power = average_power(res_p.mapped, vectors,
                                    seed=5).total
        rows.append([name, res_a.total_area, res_p.total_area,
                     p_area * 1e6, p_power * 1e6,
                     1 - p_power / p_area])
    return rows


def decomposition_rows(vectors=1024):
    """[48] ablation: balanced vs probability-ordered subject graphs
    under skewed input statistics (wide-gate decoder)."""
    from repro.logic.gates import GateType
    from repro.logic.netlist import Network
    from repro.sim.functional import verify_equivalence_exact

    lib = generic_library()
    # Wide-gate "address match" logic: the decomposition style decides
    # the chain order inside each wide AND.
    net = Network("widedec")
    names = [f"s{i}" for i in range(5)] + ["en"]
    net.add_inputs(names)
    for code in range(4):
        lits = [names[i] if (code >> i) & 1 else
                net.add_gate(f"n{code}_{i}", GateType.NOT, [names[i]])
                for i in range(5)]
        net.add_gate(f"o{code}", GateType.AND, lits + ["en"])
        net.set_output(f"o{code}")
    probs = {f"s{i}": 0.1 for i in range(5)}
    probs["en"] = 0.95
    from repro.logic.transform import decompose_to_primitives

    rows = []
    for style in ("balanced", "power"):
        with phase(PHASE_OPT):
            subject = decompose_to_primitives(net, input_probs=probs,
                                              decomposition=style)
        with phase(PHASE_EST):
            p_subject = average_power(subject, vectors, seed=6,
                                      input_probs=probs).total
        with phase(PHASE_OPT):
            res = tech_map(net, lib, "power", decomposition=style,
                           input_probs=probs, seed=2)
        with phase(PHASE_VERIFY):
            assert verify_equivalence_exact(net, res.mapped)
        with phase(PHASE_EST):
            p_mapped = average_power(res.mapped, vectors, seed=6,
                                     input_probs=probs).total
        rows.append([style, p_subject * 1e6, res.total_area,
                     p_mapped * 1e6])
    return rows


def run(params=None):
    quick, _seed = bench_params(params)
    vectors = scaled(512, quick, floor=128)
    rows = mapping_sweep(vectors=vectors,
                         verify_vectors=scaled(128, quick, floor=64))
    drows = decomposition_rows(vectors=scaled(1024, quick, floor=256))
    metrics = {}
    for name, area_a, area_p, p_area, p_power, saving in rows:
        metrics[f"{name}.area_area_obj"] = area_a
        metrics[f"{name}.area_power_obj"] = area_p
        metrics[f"{name}.power_saving"] = saving
    for style, p_subject, area, p_mapped in drows:
        metrics[f"decomp.{style}.subject_power_uW"] = p_subject
        metrics[f"decomp.{style}.mapped_power_uW"] = p_mapped
    return {"metrics": metrics, "vectors": vectors}


def bench_tech_mapping(benchmark):
    rows = benchmark.pedantic(mapping_sweep, rounds=2, iterations=1)
    emit("E7: area- vs power-driven mapping", format_table(
        ["circuit", "area(A)", "area(P)", "power(A) uW", "power(P) uW",
         "power saving"], rows))
    for row in rows:
        # Power mapping wins clearly on power (it buys the low-cap lp
        # cells) and pays for it in area — the classic [43] trade.
        assert row[5] > 0.15, row
        assert row[2] > row[1], row

    drows = decomposition_rows()
    emit("E7b: decomposition style under skewed statistics ([48])",
         format_table(["subject graph", "unmapped power uW", "area",
                       "mapped power uW"], drows))
    balanced, power = drows
    # The probability-ordered chains win on the raw subject graph
    # (modestly here — output loads and inverters are order-invariant);
    # after the 4-cut matcher re-covers the structure the two styles
    # converge (the covering largely absorbs the decomposition).
    assert power[1] < 0.98 * balanced[1]
    assert power[3] <= balanced[3] * 1.05
