"""E7 — Technology mapping for low power (claim C7).

Paper (§III-B, [43]/[48]/[26]): extending DAGON's tree covering to a
power cost function trades area for measurably less power than the
area-driven mapping of the same subject graph.
"""

from repro.core.report import format_table
from repro.library.cells import generic_library
from repro.logic.generators import (comparator, equality_checker,
                                    ripple_carry_adder)
from repro.opt.logic.mapping import tech_map
from repro.power.model import average_power
from repro.sim.functional import verify_equivalence

from conftest import emit

CIRCUITS = [
    ("rca6", lambda: ripple_carry_adder(6)),
    ("cmp8", lambda: comparator(8)),
    ("eq8", lambda: equality_checker(8)),
]


def mapping_sweep():
    lib = generic_library()
    rows = []
    for name, make in CIRCUITS:
        net = make()
        res_a = tech_map(net, lib, "area", seed=1)
        res_p = tech_map(net, lib, "power", seed=1)
        assert verify_equivalence(net, res_a.mapped, 128)
        assert verify_equivalence(net, res_p.mapped, 128)
        p_area = average_power(res_a.mapped, 512, seed=5).total
        p_power = average_power(res_p.mapped, 512, seed=5).total
        rows.append([name, res_a.total_area, res_p.total_area,
                     p_area * 1e6, p_power * 1e6,
                     1 - p_power / p_area])
    return rows


def decomposition_rows():
    """[48] ablation: balanced vs probability-ordered subject graphs
    under skewed input statistics (wide-gate decoder)."""
    from repro.logic.gates import GateType
    from repro.logic.netlist import Network
    from repro.sim.functional import verify_equivalence_exact

    lib = generic_library()
    # Wide-gate "address match" logic: the decomposition style decides
    # the chain order inside each wide AND.
    net = Network("widedec")
    names = [f"s{i}" for i in range(5)] + ["en"]
    net.add_inputs(names)
    for code in range(4):
        lits = [names[i] if (code >> i) & 1 else
                net.add_gate(f"n{code}_{i}", GateType.NOT, [names[i]])
                for i in range(5)]
        net.add_gate(f"o{code}", GateType.AND, lits + ["en"])
        net.set_output(f"o{code}")
    probs = {f"s{i}": 0.1 for i in range(5)}
    probs["en"] = 0.95
    from repro.logic.transform import decompose_to_primitives

    rows = []
    for style in ("balanced", "power"):
        subject = decompose_to_primitives(net, input_probs=probs,
                                          decomposition=style)
        p_subject = average_power(subject, 1024, seed=6,
                                  input_probs=probs).total
        res = tech_map(net, lib, "power", decomposition=style,
                       input_probs=probs, seed=2)
        assert verify_equivalence_exact(net, res.mapped)
        p_mapped = average_power(res.mapped, 1024, seed=6,
                                 input_probs=probs).total
        rows.append([style, p_subject * 1e6, res.total_area,
                     p_mapped * 1e6])
    return rows


def bench_tech_mapping(benchmark):
    rows = benchmark.pedantic(mapping_sweep, rounds=2, iterations=1)
    emit("E7: area- vs power-driven mapping", format_table(
        ["circuit", "area(A)", "area(P)", "power(A) uW", "power(P) uW",
         "power saving"], rows))
    for row in rows:
        # Power mapping wins clearly on power (it buys the low-cap lp
        # cells) and pays for it in area — the classic [43] trade.
        assert row[5] > 0.15, row
        assert row[2] > row[1], row

    drows = decomposition_rows()
    emit("E7b: decomposition style under skewed statistics ([48])",
         format_table(["subject graph", "unmapped power uW", "area",
                       "mapped power uW"], drows))
    balanced, power = drows
    # The probability-ordered chains win on the raw subject graph
    # (modestly here — output loads and inverters are order-invariant);
    # after the 4-cut matcher re-covers the structure the two styles
    # converge (the covering largely absorbs the decomposition).
    assert power[1] < 0.98 * balanced[1]
    assert power[3] <= balanced[3] * 1.05
