"""E2 — Transistor reordering in complex gates (claim C3).

Paper (§II-A, [32]/[42]): judicious ordering of transistors within
complex gates yields *moderate* power (and delay) improvements.  We
sweep input-probability skews on 3- and 4-high stacks and report the
saving of the best order over the worst and over the arbitrary
(identity) baseline.
"""

from repro.bench.profiling import PHASE_OPT, phase
from repro.core.report import format_table
from repro.opt.circuit.reorder import optimize_stack_order

from conftest import emit

CLAIMS = ("C3",)

SWEEPS = [
    ("n3 uniform", [0.5, 0.5, 0.5]),
    ("n3 mild", [0.7, 0.5, 0.3]),
    ("n3 strong", [0.9, 0.5, 0.1]),
    ("n4 mild", [0.7, 0.6, 0.4, 0.3]),
    ("n4 strong", [0.95, 0.7, 0.3, 0.05]),
]


def reorder_sweep():
    rows = []
    for name, probs in SWEEPS:
        with phase(PHASE_OPT):
            res = optimize_stack_order(probs)
        rows.append([name, res.baseline_energy, res.best_energy,
                     res.energy_saving, res.spread])
    return rows


def run(params=None):
    # Exhaustive over tiny stacks — nothing to scale down.
    rows = reorder_sweep()
    metrics = {}
    for name, _identity, _best, saving, spread in rows:
        key = name.replace(" ", "_")
        metrics[f"{key}.saving"] = saving
        metrics[f"{key}.best_worst_ratio"] = spread
    return {"metrics": metrics, "vectors": 0}


def bench_transistor_reorder(benchmark):
    rows = benchmark(reorder_sweep)
    emit("E2: transistor reordering (stack energy/cycle)", format_table(
        ["sweep", "identity", "best", "saving vs identity",
         "best/worst"], rows))
    by_name = {r[0]: r for r in rows}
    # Uniform inputs: no headroom.  Skew: moderate (10-70%) savings.
    assert abs(by_name["n3 uniform"][3]) < 1e-6
    assert 0.05 < by_name["n3 strong"][3] < 0.8
    assert by_name["n4 strong"][3] >= by_name["n4 mild"][3]
