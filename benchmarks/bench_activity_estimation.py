"""Ablation A1 — Activity estimation accuracy vs runtime.

DESIGN.md: compare the independence-approximation propagation, the
BDD-exact probabilities and Monte-Carlo simulation on accuracy
(signal-probability RMS error against exact) and wall-clock cost.
"""

import math
import time

from repro.core.report import format_table
from repro.logic.generators import comparator, random_logic
from repro.power.activity import (activity_from_simulation,
                                  signal_probability_exact,
                                  signal_probability_propagation)

from conftest import emit

CIRCUITS = [
    ("cmp6", lambda: comparator(6)),
    ("rand10x40", lambda: random_logic(10, 40, seed=4)),
]


def estimation_rows():
    rows = []
    for name, make in CIRCUITS:
        net = make()
        t0 = time.perf_counter()
        exact = signal_probability_exact(net)
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        prop = signal_probability_propagation(net)
        t_prop = time.perf_counter() - t0
        t0 = time.perf_counter()
        _act, sim = activity_from_simulation(net, 2048, seed=1)
        t_sim = time.perf_counter() - t0

        def rms(est):
            errs = [(est[n] - exact[n]) ** 2 for n in exact]
            return math.sqrt(sum(errs) / len(errs))

        rows.append([name, rms(prop), rms(sim), t_prop * 1e3,
                     t_sim * 1e3, t_exact * 1e3])
    return rows


def bench_activity_estimation(benchmark):
    rows = benchmark.pedantic(estimation_rows, rounds=2, iterations=1)
    emit("A1: probability estimation accuracy (RMS vs exact) & cost",
         format_table(["circuit", "propagation RMS", "MC-2048 RMS",
                       "prop ms", "sim ms", "exact ms"], rows))
    for row in rows:
        # Monte-Carlo at 2048 vectors is near-exact; propagation is the
        # cheap-but-coarser option.
        assert row[2] < 0.05
        assert row[1] < 0.25
        assert row[3] < row[5]   # propagation cheaper than exact BDDs
