"""Ablation A1 — Activity estimation accuracy vs runtime.

DESIGN.md: compare the independence-approximation propagation, the
BDD-exact probabilities and Monte-Carlo simulation on accuracy
(signal-probability RMS error against exact) and wall-clock cost.
"""

import math
import time

from repro.bench.profiling import PHASE_EST, PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.generators import comparator, random_logic
from repro.power.activity import (activity_from_simulation,
                                  signal_probability_exact,
                                  signal_probability_propagation)

from conftest import bench_params, emit, scaled

CLAIMS = ()

CIRCUITS = [
    ("cmp6", lambda: comparator(6)),
    ("rand10x40", lambda: random_logic(10, 40, seed=4)),
]


def estimation_rows(vectors=2048, seed=1):
    rows = []
    for name, make in CIRCUITS:
        net = make()
        t0 = time.perf_counter()
        with phase(PHASE_EST):
            exact = signal_probability_exact(net)
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        with phase(PHASE_EST):
            prop = signal_probability_propagation(net)
        t_prop = time.perf_counter() - t0
        t0 = time.perf_counter()
        with phase(PHASE_SIM):
            _act, sim = activity_from_simulation(net, vectors,
                                                 seed=seed)
        t_sim = time.perf_counter() - t0

        def rms(est):
            errs = [(est[n] - exact[n]) ** 2 for n in exact]
            return math.sqrt(sum(errs) / len(errs))

        rows.append([name, rms(prop), rms(sim), t_prop * 1e3,
                     t_sim * 1e3, t_exact * 1e3])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(2048, quick)
    rows = estimation_rows(vectors=vectors, seed=seed + 1)
    metrics = {}
    for name, rms_prop, rms_sim, t_prop, t_sim, t_exact in rows:
        metrics[f"{name}.rms_propagation"] = rms_prop
        metrics[f"{name}.rms_montecarlo"] = rms_sim
        metrics[f"{name}.propagation_ms"] = t_prop
        metrics[f"{name}.simulation_ms"] = t_sim
        metrics[f"{name}.exact_ms"] = t_exact
    return {"metrics": metrics, "vectors": vectors}


def bench_activity_estimation(benchmark):
    rows = benchmark.pedantic(estimation_rows, rounds=2, iterations=1)
    emit("A1: probability estimation accuracy (RMS vs exact) & cost",
         format_table(["circuit", "propagation RMS", "MC-2048 RMS",
                       "prop ms", "sim ms", "exact ms"], rows))
    for row in rows:
        # Monte-Carlo at 2048 vectors is near-exact; propagation is the
        # cheap-but-coarser option.
        assert row[2] < 0.05
        assert row[1] < 0.25
        assert row[3] < row[5]   # propagation cheaper than exact BDDs
