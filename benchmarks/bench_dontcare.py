"""E4 — Don't-care optimization for power (claim C5).

Paper (§III-A.1, [38]/[19]): re-minimizing nodes against their
controllability/observability don't-cares, with the cover chosen for
switching activity, reduces power.  Workload: reconvergent random
networks (rich in CDCs/ODCs).
"""

from repro.bench.profiling import PHASE_OPT, PHASE_VERIFY, phase
from repro.core.report import format_table
from repro.logic.generators import random_logic
from repro.opt.logic.dontcare import dontcare_power_optimization
from repro.sim.functional import verify_equivalence

from conftest import bench_params, emit, scaled

CLAIMS = ("C5",)

SEEDS = [2, 7, 11, 21]


def dontcare_sweep(seeds=tuple(SEEDS), vectors=256):
    rows = []
    for seed in seeds:
        net = random_logic(7, 22, seed=seed)
        ref = net.copy()
        with phase(PHASE_OPT):
            res = dontcare_power_optimization(net, num_vectors=vectors)
        with phase(PHASE_VERIFY):
            assert verify_equivalence(ref, net, 2 * vectors, seed=seed)
        rows.append([f"rand{seed}", res.nodes_changed,
                     res.switched_cap_before, res.switched_cap_after,
                     res.power_saving, res.literals_before,
                     res.literals_after])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(256, quick, floor=128)
    seeds = tuple(s + seed for s in (SEEDS[:2] if quick else SEEDS))
    rows = dontcare_sweep(seeds=seeds, vectors=vectors)
    metrics = {}
    for label, changed, _cb, _ca, saving, lits_b, lits_a in rows:
        metrics[f"{label}.nodes_changed"] = changed
        metrics[f"{label}.power_saving"] = saving
        metrics[f"{label}.literals_delta"] = lits_a - lits_b
    return {"metrics": metrics, "vectors": vectors}


def bench_dontcare(benchmark):
    rows = benchmark.pedantic(dontcare_sweep, rounds=2, iterations=1)
    emit("E4: don't-care power optimization", format_table(
        ["circuit", "nodes changed", "cap before", "cap after",
         "saving", "lits before", "lits after"], rows))
    # Never a regression; some circuits must actually improve.
    assert all(r[4] >= -1e-9 for r in rows)
    assert any(r[4] > 0.01 for r in rows)
