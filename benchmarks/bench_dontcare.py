"""E4 — Don't-care optimization for power (claim C5).

Paper (§III-A.1, [38]/[19]): re-minimizing nodes against their
controllability/observability don't-cares, with the cover chosen for
switching activity, reduces power.  Workload: reconvergent random
networks (rich in CDCs/ODCs).
"""

from repro.core.report import format_table
from repro.logic.generators import random_logic
from repro.opt.logic.dontcare import dontcare_power_optimization
from repro.sim.functional import verify_equivalence

from conftest import emit

SEEDS = [2, 7, 11, 21]


def dontcare_sweep():
    rows = []
    for seed in SEEDS:
        net = random_logic(7, 22, seed=seed)
        ref = net.copy()
        res = dontcare_power_optimization(net, num_vectors=256)
        assert verify_equivalence(ref, net, 512, seed=seed)
        rows.append([f"rand{seed}", res.nodes_changed,
                     res.switched_cap_before, res.switched_cap_after,
                     res.power_saving, res.literals_before,
                     res.literals_after])
    return rows


def bench_dontcare(benchmark):
    rows = benchmark.pedantic(dontcare_sweep, rounds=2, iterations=1)
    emit("E4: don't-care power optimization", format_table(
        ["circuit", "nodes changed", "cap before", "cap after",
         "saving", "lits before", "lits after"], rows))
    # Never a regression; some circuits must actually improve.
    assert all(r[4] >= -1e-9 for r in rows)
    assert any(r[4] > 0.01 for r in rows)
