"""A6 — Exact sequential power estimation ([28] Monteiro & Devadas).

The combinational estimators assume flip-flop outputs are free 0.5
inputs; the exact method solves the machine's Markov chain.  On FSMs
with strongly non-uniform stationary distributions the combinational
assumption misestimates badly while the exact analysis matches long
simulation.
"""

import random

from repro.bench.profiling import PHASE_EST, PHASE_SIM, phase
from repro.core.report import format_table
from repro.opt.seq.encoding import encode_natural
from repro.opt.seq.stg import STG, synthesize_fsm
from repro.power.activity import (activity_from_simulation,
                                  sequential_activity)
from repro.power.model import power_report
from repro.power.sequential import exact_sequential_activity

from conftest import bench_params, emit, scaled

CLAIMS = ()


def sticky_fsm():
    """Machine that lives in s0 almost always (rare excursions)."""
    stg = STG(2, 1)
    stg.add_transition("11", "s0", "s1", "0")
    stg.add_transition("0-", "s0", "s0", "0")
    stg.add_transition("10", "s0", "s0", "0")
    stg.add_transition("--", "s1", "s2", "1")
    stg.add_transition("--", "s2", "s3", "1")
    stg.add_transition("--", "s3", "s0", "0")
    return synthesize_fsm(stg, encode_natural(stg))


def estimation_rows(cycles=30000, comb_vectors=4096, seed=7):
    net = sticky_fsm()
    with phase(PHASE_EST):
        exact = exact_sequential_activity(net)
    # Long-simulation reference.
    rng = random.Random(seed)
    vecs = [{"x0": rng.getrandbits(1), "x1": rng.getrandbits(1)}
            for _ in range(cycles)]
    with phase(PHASE_SIM):
        sim = sequential_activity(net, vecs)
    # Combinational approximation: latch outputs as free 0.5 inputs.
    with phase(PHASE_SIM):
        comb, _ = activity_from_simulation(net, comb_vectors, seed=1)

    p_exact = power_report(net, exact.activities).total
    p_sim = power_report(net, sim).total
    p_comb = power_report(net, comb).total

    err_exact = max(abs(exact.activities[k] - sim[k]) for k in sim)
    err_comb = max(abs(comb[k] - sim[k]) for k in sim)
    return [["exact Markov ([28])", exact.num_states, err_exact,
             p_exact * 1e6],
            ["combinational approx", "-", err_comb, p_comb * 1e6],
            ["30k-cycle simulation", "-", 0.0, p_sim * 1e6]]


def run(params=None):
    quick, seed = bench_params(params)
    cycles = scaled(30000, quick, floor=4000)
    comb_vectors = scaled(4096, quick, floor=1024)
    rows = estimation_rows(cycles=cycles, comb_vectors=comb_vectors,
                           seed=seed + 7)
    exact, comb, sim = rows
    metrics = {
        "num_states": exact[1],
        "exact.max_activity_error": exact[2],
        "comb.max_activity_error": comb[2],
        "exact.power_uW": exact[3],
        "comb.power_uW": comb[3],
        "sim.power_uW": sim[3],
    }
    return {"metrics": metrics, "vectors": cycles}


def bench_sequential_estimation(benchmark):
    rows = benchmark.pedantic(estimation_rows, rounds=2, iterations=1)
    emit("A6: sequential power estimation (max node-activity error vs "
         "long simulation)", format_table(
             ["method", "states", "max act error", "power uW"], rows))
    exact, comb, sim = rows
    assert exact[2] < 0.02
    assert comb[2] > 5 * exact[2]
    # Exact power within 5% of the simulated reference.
    assert abs(exact[3] - sim[3]) / sim[3] < 0.05