"""E6 — Power-aware kernel extraction (claim C6).

Paper (§III-A.3, [35] SYCLOP): when extraction is valued by switching
activity instead of literal count, the chosen decomposition differs and
the switched-capacitance cost drops.  Workload: random two-level covers
with strongly skewed input statistics.
"""

import random

from repro.bench.profiling import PHASE_OPT, PHASE_VERIFY, phase
from repro.core.report import format_table
from repro.logic.cube import Cube
from repro.logic.netlist import Network
from repro.logic.sop import Cover
from repro.opt.logic.kernels import extract_kernels
from repro.sim.functional import verify_equivalence

from conftest import bench_params, emit, scaled

CLAIMS = ("C6",)


def make_cover_net(seed: int, num_vars: int = 6, num_cubes: int = 8):
    rng = random.Random(seed)
    cubes = []
    for _ in range(num_cubes):
        lits = []
        for v in range(num_vars):
            r = rng.random()
            if r < 0.35:
                lits.append((v, 1))
            elif r < 0.5:
                lits.append((v, 0))
        if not lits:
            lits = [(rng.randrange(num_vars), 1)]
        cubes.append(Cube.from_literals(num_vars, lits))
    net = Network(f"cover{seed}")
    names = [f"x{i}" for i in range(num_vars)]
    net.add_inputs(names)
    net.add_sop("f", names, Cover(num_vars, cubes).sccc())
    net.set_output("f")
    return net


PROBS = {"x0": 0.95, "x1": 0.9, "x2": 0.5, "x3": 0.5, "x4": 0.1,
         "x5": 0.05}


def make_structured_net(hot_prob=0.5, quiet_prob=0.02):
    """f = (h0+h1)(q0+q1) + (h2+h3)(q2+q3): the area objective is
    indifferent between extracting the hot or the quiet kernels; the
    power objective must pick the quiet ones (low-activity new wire)."""
    net = Network("structured")
    names = [f"q{i}" for i in range(4)] + [f"h{i}" for i in range(4)]
    net.add_inputs(names)
    rows = []
    for (c, d, a, b) in [(0, 1, 4, 5), (2, 3, 6, 7)]:
        for x in (a, b):
            for y in (c, d):
                s = ["-"] * 8
                s[x] = "1"
                s[y] = "1"
                rows.append("".join(s))
    net.add_sop("f", names, Cover.from_strings(rows))
    net.set_output("f")
    probs = {f"h{i}": hot_prob for i in range(4)}
    probs.update({f"q{i}": quiet_prob for i in range(4)})
    return net, probs


def factoring_sweep(cover_seeds=(1, 3, 5, 8), vectors=128):
    rows = []
    for label, make, probs in (
        [("structured", None, None)] +
        [(f"cover{seed}", seed, PROBS) for seed in cover_seeds]):
        if label == "structured":
            net_area, probs = make_structured_net()
            net_power, _ = make_structured_net()
        else:
            net_area = make_cover_net(make)
            net_power = make_cover_net(make)
        ref = net_area.copy()
        with phase(PHASE_OPT):
            res_a = extract_kernels(net_area, "area",
                                    input_probs=probs)
            res_p = extract_kernels(net_power, "power",
                                    input_probs=probs)
        with phase(PHASE_VERIFY):
            assert verify_equivalence(ref, net_area, vectors)
            assert verify_equivalence(ref, net_power, vectors)
        rows.append([label,
                     res_a.literals_after, res_p.literals_after,
                     res_a.switched_cap_after,
                     res_p.switched_cap_after])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(128, quick, floor=64)
    cover_seeds = tuple(s + seed for s in ((1, 3) if quick
                                           else (1, 3, 5, 8)))
    rows = factoring_sweep(cover_seeds=cover_seeds, vectors=vectors)
    metrics = {}
    for label, lits_a, lits_p, cap_a, cap_p in rows:
        metrics[f"{label}.lits_area_obj"] = lits_a
        metrics[f"{label}.lits_power_obj"] = lits_p
        metrics[f"{label}.cap_area_obj"] = cap_a
        metrics[f"{label}.cap_power_obj"] = cap_p
    return {"metrics": metrics, "vectors": vectors}


def bench_factoring(benchmark):
    rows = benchmark.pedantic(factoring_sweep, rounds=2, iterations=1)
    emit("E6: area- vs power-driven extraction", format_table(
        ["cover", "lits (area obj)", "lits (power obj)",
         "cap (area obj)", "cap (power obj)"], rows))
    # Power objective wins on switched capacitance overall; individual
    # random covers may tie (both extractors are greedy).
    assert sum(r[4] for r in rows) <= sum(r[3] for r in rows) + 1e-9
    structured = rows[0]
    assert structured[4] < structured[3] * 0.7, \
        "power objective must pick the quiet kernels"
