"""A7 — Runtime scaling of the core engines.

Not a paper claim but an adoption question: how do the estimators and
the mapper scale with netlist size?  The bit-parallel zero-delay
simulator should be near-linear in gates; the event-driven simulator
pays per transition; mapping pays per cut.  Loose monotonic-growth
assertions guard against accidental quadratic blowups in the hot paths.
"""

import time

from repro.core.report import format_table
from repro.library.cells import generic_library
from repro.logic.generators import random_logic
from repro.opt.logic.mapping import tech_map
from repro.power.activity import activity_from_simulation
from repro.power.glitch import glitch_report

from conftest import emit

SIZES = [50, 100, 200, 400]


def scaling_rows():
    lib = generic_library()
    rows = []
    for gates in SIZES:
        net = random_logic(16, gates, seed=1)
        t0 = time.perf_counter()
        activity_from_simulation(net, num_vectors=512, seed=1)
        t_mc = time.perf_counter() - t0
        t0 = time.perf_counter()
        glitch_report(net, num_vectors=48, seed=1)
        t_ev = time.perf_counter() - t0
        t0 = time.perf_counter()
        tech_map(net, lib, "area")
        t_map = time.perf_counter() - t0
        rows.append([gates, t_mc * 1e3, t_ev * 1e3, t_map * 1e3])
    return rows


def bench_scaling(benchmark):
    rows = benchmark.pedantic(scaling_rows, rounds=1, iterations=1)
    emit("A7: runtime scaling (ms)", format_table(
        ["gates", "MC activity (512v)", "event sim (48v)",
         "area mapping"], rows))
    # 8x the gates should cost well under 64x in each engine
    # (guards against accidentally quadratic hot paths).
    first, last = rows[0], rows[-1]
    factor = last[0] / first[0]
    for col in (1, 2, 3):
        assert last[col] < first[col] * factor ** 2 * 4, col
