"""A7 — Runtime scaling of the core engines.

Not a paper claim but an adoption question: how do the estimators and
the mapper scale with netlist size?  The bit-parallel zero-delay
simulator should be near-linear in gates; the event-driven simulator
pays per transition; mapping pays per cut.  Loose monotonic-growth
assertions guard against accidental quadratic blowups in the hot paths.
"""

import time

from repro.bench.profiling import PHASE_OPT, PHASE_SIM, phase
from repro.core.report import format_table
from repro.library.cells import generic_library
from repro.logic.generators import random_logic
from repro.opt.logic.mapping import tech_map
from repro.power.activity import activity_from_simulation
from repro.power.glitch import glitch_report

from conftest import bench_params, emit, scaled

CLAIMS = ()

SIZES = [50, 100, 200, 400]


def scaling_rows(sizes=tuple(SIZES), mc_vectors=512, ev_vectors=48):
    lib = generic_library()
    rows = []
    for gates in sizes:
        net = random_logic(16, gates, seed=1)
        t0 = time.perf_counter()
        with phase(PHASE_SIM):
            activity_from_simulation(net, num_vectors=mc_vectors,
                                     seed=1)
        t_mc = time.perf_counter() - t0
        t0 = time.perf_counter()
        with phase(PHASE_SIM):
            glitch_report(net, num_vectors=ev_vectors, seed=1)
        t_ev = time.perf_counter() - t0
        t0 = time.perf_counter()
        with phase(PHASE_OPT):
            tech_map(net, lib, "area")
        t_map = time.perf_counter() - t0
        rows.append([gates, t_mc * 1e3, t_ev * 1e3, t_map * 1e3])
    return rows


def run(params=None):
    quick, _seed = bench_params(params)
    sizes = (50, 100) if quick else tuple(SIZES)
    mc_vectors = scaled(512, quick, floor=128)
    ev_vectors = scaled(48, quick, floor=16)
    rows = scaling_rows(sizes=sizes, mc_vectors=mc_vectors,
                        ev_vectors=ev_vectors)
    metrics = {}
    for gates, t_mc, t_ev, t_map in rows:
        metrics[f"g{gates}.montecarlo_ms"] = t_mc
        metrics[f"g{gates}.event_sim_ms"] = t_ev
        metrics[f"g{gates}.mapping_ms"] = t_map
    # Deterministic growth-factor guard (wall-clock ratios are noisy,
    # so only the volatile _ms values carry the absolute numbers).
    first, last = rows[0], rows[-1]
    metrics["size_factor"] = last[0] / first[0]
    return {"metrics": metrics, "vectors": mc_vectors}


def bench_scaling(benchmark):
    rows = benchmark.pedantic(scaling_rows, rounds=1, iterations=1)
    emit("A7: runtime scaling (ms)", format_table(
        ["gates", "MC activity (512v)", "event sim (48v)",
         "area mapping"], rows))
    # 8x the gates should cost well under 64x in each engine
    # (guards against accidentally quadratic hot paths).
    first, last = rows[0], rows[-1]
    factor = last[0] / first[0]
    for col in (1, 2, 3):
        assert last[col] < first[col] * factor ** 2 * 4, col
