"""Ablation A6 — Compiled vs interpreted simulation; incremental cones.

The compiled evaluator (``repro.sim.compiled``) must be (a) bit-exact
with the interpreted ``Network.evaluate_words`` walk, (b) faster on the
activity-estimation workload every optimizer iterates, and (c) safely
cached: an in-place structural edit must trigger a recompile (stale
compile caches would silently corrupt every downstream estimate).

Deterministic gating metrics: per-circuit word-level mismatch counts
(always 0), a checksum of the simulated words (any change in compiled
codegen shows up here), and the recompile count over an edit sequence
(a silently-stale cache changes it).  Wall-clock metrics (``*_ms``) and
speedup ratios (``*_x``) are volatile and exempt from drift gating.
"""

import time
import zlib

from repro.bench.profiling import PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.gates import GateType
from repro.logic.generators import (array_multiplier, random_logic,
                                    ripple_carry_adder)
from repro.power.activity import SimulationCache, activity_from_simulation
from repro.sim.compiled import get_compiled
from repro.sim.vectors import random_words

from conftest import bench_params, emit, scaled

CLAIMS = ()

CIRCUITS = [
    ("rca16", lambda: ripple_carry_adder(16)),
    ("mult4", lambda: array_multiplier(4)),
    ("rand12x80", lambda: random_logic(12, 80, seed=9)),
]

#: toggled gate pairs for the edit/recompile sequence
_FLIP = {GateType.AND: GateType.NAND, GateType.NAND: GateType.AND,
         GateType.OR: GateType.NOR, GateType.NOR: GateType.OR,
         GateType.XOR: GateType.XNOR, GateType.XNOR: GateType.XOR}


def _checksum(values):
    """Deterministic digest of the simulated words (exact ints)."""
    acc = 0
    for name, w in sorted(values.items()):
        acc = (acc * 1000003 + zlib.crc32(name.encode()) + w) % (1 << 40)
    return acc


def _cone_sizes(net):
    """Transitive-fanout cone size of every node (self included)."""
    fanouts = {name: [] for name in net.nodes}
    for node in net.nodes.values():
        for fi in node.fanins:
            fanouts[fi].append(node.name)
    sizes = {}
    for name in reversed(net.topo_order()):
        cone = {name}
        for fo in fanouts[name]:
            cone |= sizes[fo]
        sizes[name] = cone
    return {name: len(c) for name, c in sizes.items()}


def _editable_gates(net, limit):
    """Flippable gates with the smallest fanout cones.

    Local rewrites late in a flow touch gates whose influence is
    bounded — the regime incremental re-simulation targets.  A
    near-input gate's cone is the whole circuit and leaves nothing to
    reuse, so the edit set is chosen by cone size (deterministically).
    """
    cones = _cone_sizes(net)
    names = sorted((n.name for n in net.nodes.values()
                    if n.kind == "gate" and n.gtype in _FLIP),
                   key=lambda n: (cones[n], n))
    return names[:limit]


def compiled_rows(vectors=2048, seed=6, edits=8, repeats=10):
    rows = []
    for name, make in CIRCUITS:
        net = make()
        sources = [n.name for n in net.nodes.values() if n.is_source()]
        words = random_words(sources, vectors, seed)
        mask = (1 << vectors) - 1

        t0 = time.perf_counter()
        for _ in range(repeats):
            interp = net.evaluate_words(words, mask)
        t_interp = (time.perf_counter() - t0) / repeats

        # Warm the compile cache first — a long-lived flow compiles
        # once; the steady-state cost is evaluation plus the per-call
        # fingerprint verification.
        get_compiled(net)
        with phase(PHASE_SIM):
            t0 = time.perf_counter()
            for _ in range(repeats):
                compiled = get_compiled(net).evaluate_words(words, mask)
            t_compiled = (time.perf_counter() - t0) / repeats

        mismatch = sum(1 for k, w in interp.items()
                       if compiled.get(k) != w)

        # Edit loop: the optimizer inner-loop workload.  Each step flips
        # one gate's polarity, re-estimates activity, and undoes it.
        # Full = fresh simulation per edit; incremental = dirty-cone
        # re-simulation through the reuse cache.  Both pay exactly one
        # recompile per edit (the structure changed).
        gates = _editable_gates(net, edits)
        t0 = time.perf_counter()
        full_acts = []
        for g in gates:
            net.nodes[g].gtype = _FLIP[net.nodes[g].gtype]
            act, _p = activity_from_simulation(net, vectors, seed)
            full_acts.append(act)
            net.nodes[g].gtype = _FLIP[net.nodes[g].gtype]
        t_full = time.perf_counter() - t0

        cache = SimulationCache()
        activity_from_simulation(net, vectors, seed, reuse=cache)
        inc_acts = []
        t0 = time.perf_counter()
        for g in gates:
            net.nodes[g].gtype = _FLIP[net.nodes[g].gtype]
            trial = cache.copy()
            act, _p = activity_from_simulation(net, vectors, seed,
                                               reuse=trial, dirty=(g,))
            inc_acts.append(act)
            net.nodes[g].gtype = _FLIP[net.nodes[g].gtype]
        t_inc = time.perf_counter() - t0

        inc_mismatch = sum(
            1 for ref_act, act in zip(full_acts, inc_acts)
            for k, v in ref_act.items() if act.get(k) != v)

        # Untimed: every structural edit must invalidate the compile
        # cache (a stale cache would silently corrupt the estimates).
        recompiles = 0
        for g in gates:
            before = get_compiled(net)
            net.nodes[g].gtype = _FLIP[net.nodes[g].gtype]
            if get_compiled(net) is not before:
                recompiles += 1
            net.nodes[g].gtype = _FLIP[net.nodes[g].gtype]

        rows.append([name, mismatch, inc_mismatch, _checksum(compiled),
                     recompiles, len(gates), t_interp * 1e3,
                     t_compiled * 1e3, t_full * 1e3, t_inc * 1e3])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(2048, quick, floor=128)
    edits = 4 if quick else 8
    rows = compiled_rows(vectors=vectors, seed=seed + 6, edits=edits)
    metrics = {}
    for (name, mismatch, inc_mismatch, checksum, recompiles, n_edits,
         t_interp, t_compiled, t_full, t_inc) in rows:
        metrics[f"{name}.mismatch_words"] = mismatch
        metrics[f"{name}.incremental_mismatch_words"] = inc_mismatch
        metrics[f"{name}.words_checksum"] = checksum
        metrics[f"{name}.recompiles"] = recompiles
        metrics[f"{name}.edits"] = n_edits
        metrics[f"{name}.interpreted_ms"] = t_interp
        metrics[f"{name}.compiled_ms"] = t_compiled
        metrics[f"{name}.full_resim_ms"] = t_full
        metrics[f"{name}.incremental_resim_ms"] = t_inc
        metrics[f"{name}.compiled_speedup_x"] = \
            t_interp / t_compiled if t_compiled else 0.0
        metrics[f"{name}.incremental_speedup_x"] = \
            t_full / t_inc if t_inc else 0.0
    return {"metrics": metrics, "vectors": vectors}


def bench_compiled_sim(benchmark):
    rows = benchmark.pedantic(compiled_rows, rounds=2, iterations=1)
    emit("A6: compiled vs interpreted simulation", format_table(
        ["circuit", "mismatch", "inc mism", "checksum", "recompiles",
         "edits", "interp ms", "compiled ms", "full-edit ms",
         "inc-edit ms"], rows))
    for (name, mismatch, inc_mismatch, _cks, recompiles, n_edits,
         t_interp, t_compiled, t_full, t_inc) in rows:
        assert mismatch == 0, f"{name}: compiled not bit-exact"
        assert inc_mismatch == 0, f"{name}: incremental not bit-exact"
        # every edit must be detected as a structural change
        assert recompiles == n_edits, f"{name}: stale compile cache"
        # the headline claim: compiled ≥ 2x over the interpreted walk,
        # and the incremental cone beats full re-simulation per edit.
        assert t_interp / t_compiled >= 2.0, \
            f"{name}: compiled only {t_interp / t_compiled:.2f}x"
        assert t_inc < t_full, f"{name}: incremental slower than full"
