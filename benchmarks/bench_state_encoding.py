"""E8 — Low-power state encoding (claim C8).

Paper (§III-C.1, [35]/[47]): weighting state-pair traffic and giving
heavy pairs uni-distant codes cuts register switching; the synthesized
machine's total power (registers + induced logic) must also improve, or
at worst break even, versus the natural encoding.
"""

import random

from repro.bench.profiling import PHASE_EST, PHASE_OPT, phase
from repro.core.report import format_table
from repro.opt.seq.encoding import (encode_anneal, encode_greedy,
                                    encode_natural, encode_onehot,
                                    evaluate_encoding)
from repro.opt.seq.stg import STG

from conftest import bench_params, emit, scaled

CLAIMS = ("C8",)


def ring_stg(n, hold=0.5):
    stg = STG(1, 1)
    for i in range(n):
        s, nxt = f"s{i}", f"s{(i + 1) % n}"
        out = "1" if i == n - 1 else "0"
        stg.add_transition("0", s, s, out)
        stg.add_transition("1", s, nxt, out)
    return stg


def random_stg(n, seed):
    rng = random.Random(seed)
    stg = STG(2, 1)
    states = [f"s{i}" for i in range(n)]
    for s in states:
        targets = rng.sample(states, 4)
        for k, t in enumerate(targets):
            stg.add_transition(format(k, "02b"), s, t,
                               str(rng.getrandbits(1)))
    return stg


def encoding_sweep(iterations=2500, sequence_length=800):
    from repro.opt.seq.fsm_benchmarks import load_benchmark

    rows = []
    for name, stg in [("ring8", ring_stg(8)),
                      ("rand8", random_stg(8, 2)),
                      ("rand12", random_stg(12, 5)),
                      ("vending", load_benchmark("vending")),
                      ("elevator", load_benchmark("elevator"))]:
        with phase(PHASE_OPT):
            encoders = [("natural", encode_natural(stg)),
                        ("greedy", encode_greedy(stg)),
                        ("anneal", encode_anneal(stg,
                                                 iterations=iterations,
                                                 seed=1)),
                        ("one-hot", encode_onehot(stg))]
        for ename, enc in encoders:
            with phase(PHASE_EST):
                res = evaluate_encoding(
                    stg, enc, sequence_length=sequence_length, seed=3)
            rows.append([name, ename, res.register_cost, res.literals,
                         res.total_power * 1e6])
    return rows


def run(params=None):
    quick, _seed = bench_params(params)
    iterations = scaled(2500, quick, floor=600)
    sequence_length = scaled(800, quick, floor=200)
    rows = encoding_sweep(iterations=iterations,
                          sequence_length=sequence_length)
    metrics = {}
    for fsm, encoder, reg_cost, literals, power in rows:
        key = f"{fsm}.{encoder.replace('-', '_')}"
        metrics[f"{key}.reg_cost"] = reg_cost
        metrics[f"{key}.literals"] = literals
        metrics[f"{key}.power_uW"] = power
    return {"metrics": metrics, "vectors": sequence_length}


def bench_state_encoding(benchmark):
    rows = benchmark.pedantic(encoding_sweep, rounds=1, iterations=1)
    emit("E8: state encoding (FF transitions/cycle, power)",
         format_table(["fsm", "encoder", "reg cost", "literals",
                       "power uW"], rows))
    by = {(r[0], r[1]): r for r in rows}
    for fsm in ("ring8", "rand8", "rand12", "vending", "elevator"):
        nat = by[(fsm, "natural")]
        ann = by[(fsm, "anneal")]
        # The optimized encoding must cut register switching...
        assert ann[2] <= nat[2] + 1e-9
    # ...and on the ring (register-dominated) also total power.
    assert by[("ring8", "anneal")][4] <= \
        by[("ring8", "natural")][4] * 1.05
