"""E15 — Software power (claim C15, [46]/[45]/[40]/[23]).

Four sub-experiments on the instruction-level power substrate:
  (a) model fit: the Tiwari-style fitted model predicts program energy;
  (b) faster code is lower-energy code (register allocation sweep);
  (c) cheaper instruction selection (strength reduction, MAC packing);
  (d) cold scheduling matters on the DSP, not on the big CPU.
"""

from repro.bench.profiling import PHASE_EST, PHASE_SIM, phase
from repro.core.report import format_table
from repro.sw.compile import (linear_scan_allocate, peephole_mac,
                              strength_reduce)
from repro.sw.cpu import CPU, big_cpu_profile, dsp_profile
from repro.sw.power_model import fit_instruction_model
from repro.sw.programs import (dot_product, fir_kernel, mixed_block,
                               scale_by_constant)
from repro.sw.schedule import cold_schedule, control_path_switching

from conftest import bench_params, emit, scaled

CLAIMS = ("C15",)


def regalloc_rows():
    cpu = CPU(big_cpu_profile())
    prog, mem, expected = dot_product(8)
    rows = []
    for regs in (3, 4, 6, 12):
        alloc = linear_scan_allocate(prog, regs)
        res = cpu.run(alloc, memory=dict(mem))
        assert res.memory.get(200) == expected
        rows.append([f"{regs} regs", res.instructions, res.cycles,
                     res.energy, res.memory_energy])
    return rows


def selection_rows():
    rows = []
    cpu = CPU(big_cpu_profile())
    sp, smem, _ = scale_by_constant(6, 8)
    plain = cpu.run(linear_scan_allocate(sp, 8), memory=dict(smem))
    reduced = cpu.run(linear_scan_allocate(strength_reduce(sp), 8),
                      memory=dict(smem))
    rows.append(["scale x8: mul", plain.cycles, plain.energy])
    rows.append(["scale x8: shl", reduced.cycles, reduced.energy])
    dsp = CPU(dsp_profile())
    fp, fmem, _ = fir_kernel(8)
    plain_f = dsp.run(linear_scan_allocate(fp, 8), memory=dict(fmem))
    packed = dsp.run(linear_scan_allocate(peephole_mac(fp), 8),
                     memory=dict(fmem))
    rows.append(["fir8: mul+add", plain_f.cycles, plain_f.energy])
    rows.append(["fir8: mac", packed.cycles, packed.energy])
    return rows


def scheduling_rows():
    prog = mixed_block()
    cold = cold_schedule(prog)
    rows = []
    for label, cpu in [("dsp", CPU(dsp_profile())),
                       ("big cpu", CPU(big_cpu_profile()))]:
        orig = cpu.run(prog)
        opt = cpu.run(cold)
        rows.append([label,
                     control_path_switching(orig.opcode_trace),
                     control_path_switching(opt.opcode_trace),
                     orig.energy, opt.energy,
                     1 - opt.energy / orig.energy])
    return rows


def model_rows(repetitions=80):
    rows = []
    for label, prof in [("dsp", dsp_profile()),
                        ("big cpu", big_cpu_profile())]:
        cpu = CPU(prof)
        with phase(PHASE_EST):
            model = fit_instruction_model(cpu,
                                          repetitions=repetitions)
        prog, _mem, _ = dot_product(6)
        prog = linear_scan_allocate(prog, 8)
        err = model.prediction_error(cpu, prog)
        rows.append([label, model.base["add"], model.base["mul"],
                     model.pair_overhead("add", "ld"), err])
    return rows


def run(params=None):
    quick, _seed = bench_params(params)
    repetitions = scaled(80, quick, floor=20)
    mrows = model_rows(repetitions=repetitions)
    with phase(PHASE_SIM):
        rrows = regalloc_rows()
        srows = selection_rows()
        crows = scheduling_rows()
    metrics = {}
    for label, base_add, base_mul, ovh, err in mrows:
        key = label.replace(" ", "_")
        metrics[f"model.{key}.base_add_nJ"] = base_add
        metrics[f"model.{key}.program_error"] = err
    for label, _instrs, cycles, energy, _mem in rrows:
        key = label.replace(" ", "_")
        metrics[f"regalloc.{key}.cycles"] = cycles
        metrics[f"regalloc.{key}.energy_nJ"] = energy
    for label, cycles, energy in srows:
        key = label.replace(" ", "_").replace(":", "")
        metrics[f"select.{key}.energy_nJ"] = energy
    for label, _sb, _sa, _eb, _ea, saving in crows:
        key = label.replace(" ", "_")
        metrics[f"cold_sched.{key}.saving"] = saving
    return {"metrics": metrics, "vectors": repetitions}


def bench_software_power(benchmark):
    mrows = benchmark.pedantic(model_rows, rounds=1, iterations=1)
    emit("E15a: instruction-level model fit", format_table(
        ["cpu", "base(add) nJ", "base(mul) nJ", "ovh(add,ld) nJ",
         "program err"], mrows))
    for row in mrows:
        assert row[4] < 0.05

    rrows = regalloc_rows()
    emit("E15b: register allocation (faster = lower energy)",
         format_table(["allocation", "instrs", "cycles", "energy nJ",
                       "mem energy nJ"], rrows))
    cycles = [r[2] for r in rrows]
    energy = [r[3] for r in rrows]
    assert cycles == sorted(cycles, reverse=True)
    assert energy == sorted(energy, reverse=True)

    srows = selection_rows()
    emit("E15c: instruction selection", format_table(
        ["program", "cycles", "energy nJ"], srows))
    assert srows[1][2] < srows[0][2]      # shl beats mul
    assert srows[3][2] < srows[2][2]      # mac beats mul+add

    crows = scheduling_rows()
    emit("E15d: cold scheduling", format_table(
        ["cpu", "switch before", "switch after", "E before",
         "E after", "saving"], crows))
    dsp, big = crows
    assert dsp[5] > 0.1 and big[5] < 0.05
