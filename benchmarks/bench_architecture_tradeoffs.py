"""A5 — Architectural and algorithmic trade-offs (§IV design examples,
[49], [14]).

Three sweeps echoing the paper's "specific design examples" paragraph:
  (a) adder architecture: ripple vs carry-lookahead vs carry-select —
      speed is bought with transistors (and hence power);
  (b) loop tiling: blocking restores foreground-buffer locality when no
      loop order has it;
  (c) algorithm choice: binary vs linear search energy on the ISS.
"""

from repro.arch.memory import (MemoryHierarchy, loop_access_trace,
                               memory_energy, tiled_access_trace)
from repro.bench.profiling import PHASE_EST, PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.generators import (carry_lookahead_adder,
                                    carry_select_adder,
                                    ripple_carry_adder)
from repro.power.model import average_power
from repro.sw.cpu import CPU, big_cpu_profile
from repro.sw.programs import binary_search, linear_search

from conftest import bench_params, emit, scaled

CLAIMS = ()


def adder_rows(vectors=512, seed=3):
    rows = []
    for name, make in [("ripple", ripple_carry_adder),
                       ("lookahead", carry_lookahead_adder),
                       ("carry-select", carry_select_adder)]:
        net = make(8)
        rep = average_power(net, vectors, seed=seed)
        rows.append([name, net.depth(), net.num_transistors(),
                     rep.total * 1e6])
    return rows


def tiling_rows():
    h = MemoryHierarchy(buffer_words=64)
    rows = []
    bad = loop_access_trace((64, 64), (1, 0))
    e0, _, m0 = memory_energy(bad, h, associative=True)
    rows.append(["column-major", m0, e0 * 1e9])
    good = loop_access_trace((64, 64), (0, 1))
    e1, _, m1 = memory_energy(good, h, associative=True)
    rows.append(["row-major (interchange)", m1, e1 * 1e9])
    tiled = tiled_access_trace((64, 64), (8, 8), (1, 0))
    e2, _, m2 = memory_energy(tiled, h, associative=True)
    rows.append(["column-major, 8x8 tiles", m2, e2 * 1e9])
    return rows


def search_rows(sizes=(16, 64, 256)):
    cpu = CPU(big_cpu_profile())
    rows = []
    for n in sizes:
        lp, lm, _ = linear_search(n, n - 2)
        bp, bm, _ = binary_search(n, n - 2)
        rl = cpu.run(lp, memory=dict(lm))
        rb = cpu.run(bp, memory=dict(bm))
        rows.append([f"n={n}", rl.cycles, rl.energy, rb.cycles,
                     rb.energy, rl.energy / rb.energy])
    return rows


def scheduler_rows():
    from repro.arch.dfg import fir_dfg
    from repro.arch.scheduling import (force_directed_schedule,
                                       list_schedule, required_units,
                                       schedule_length)

    dfg = fir_dfg(8)
    latency = dfg.critical_path() + 4
    greedy = list_schedule(dfg, {})
    fds = force_directed_schedule(dfg, latency)
    rows = []
    for label, sched in [("greedy list", greedy),
                         ("force-directed", fds)]:
        units = required_units(dfg, sched)
        rows.append([label, schedule_length(dfg, sched),
                     units.get("mul", 0), units.get("add", 0)])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(512, quick)
    with phase(PHASE_EST):
        arows = adder_rows(vectors=vectors, seed=seed + 3)
    with phase(PHASE_SIM):
        trows = tiling_rows()
        srows = search_rows(sizes=(16, 64) if quick
                            else (16, 64, 256))
    schrows = scheduler_rows()
    metrics = {}
    for name, depth, transistors, power in arows:
        metrics[f"adder.{name}.depth"] = depth
        metrics[f"adder.{name}.transistors"] = transistors
        metrics[f"adder.{name}.power_uW"] = power
    for key, (_label, misses, _energy) in zip(
            ("column_major", "row_major", "tiled"), trows):
        metrics[f"tiling.{key}.misses"] = misses
    for label, _lc, _le, _bc, _be, ratio in srows:
        metrics[f"search.{label}.energy_ratio"] = ratio
    for label, latency, muls, adds in schrows:
        key = label.replace(" ", "_")
        metrics[f"sched.{key}.latency"] = latency
        metrics[f"sched.{key}.multipliers"] = muls
    return {"metrics": metrics, "vectors": vectors}


def bench_architecture_tradeoffs(benchmark):
    arows = benchmark(adder_rows)
    emit("A5a: adder architecture (8-bit)", format_table(
        ["architecture", "depth", "transistors", "power uW"], arows))
    by = {r[0]: r for r in arows}
    assert by["carry-select"][1] < by["ripple"][1]      # faster
    assert by["carry-select"][3] > by["ripple"][3]      # hungrier
    assert by["lookahead"][1] < by["ripple"][1]

    trows = tiling_rows()
    emit("A5b: memory locality transformations", format_table(
        ["loop structure", "misses", "energy nJ"], trows))
    assert trows[2][1] < trows[0][1] / 2     # tiling beats bad order
    assert trows[1][1] <= trows[2][1]        # interchange best here

    srows = search_rows()
    emit("A5c: algorithm choice (search, worst-ish case)", format_table(
        ["size", "linear cyc", "linear nJ", "binary cyc", "binary nJ",
         "energy ratio"], srows))
    ratios = [r[5] for r in srows]
    assert ratios == sorted(ratios)          # gap widens with n
    assert ratios[-1] > 5

    schrows = scheduler_rows()
    emit("A5d: scheduling discipline at relaxed latency", format_table(
        ["scheduler", "latency", "multipliers", "adders"], schrows))
    greedy, fds = schrows
    # FDS flattens the profile: fewer multipliers allocated.
    assert fds[2] < greedy[2]
