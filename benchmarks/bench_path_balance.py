"""E5 — Glitch fraction and path balancing (claim C2).

Paper (§III-A.2, [16]): spurious transitions are 10–40% of switching
activity in typical combinational circuits; path balancing with
unit-delay buffers removes them without touching the critical path (the
[25] multiplier).  The paper's own caveat — "the addition of buffers
increases capacitance which may offset the reduction in switching
activity" — is also measured: with full-size buffers the overhead wins;
with minimum-size delay buffers balancing yields a net saving.
"""

from repro.bench.profiling import PHASE_OPT, PHASE_SIM, phase
from repro.core.report import format_table
from repro.logic.generators import (array_multiplier, parity_tree,
                                    ripple_carry_adder)
from repro.opt.logic.balance import balance_paths
from repro.power.glitch import glitch_report, timed_average_power

from conftest import bench_params, emit, scaled

CLAIMS = ("C2",)

CIRCUITS = [
    ("mult4", lambda: array_multiplier(4)),
    ("rca8", lambda: ripple_carry_adder(8)),
    ("xorchain10", lambda: parity_tree(10, balanced=False)),
]


def balance_sweep(vectors=96, seed=3):
    rows = []
    for name, make in CIRCUITS:
        net = make()
        with phase(PHASE_SIM):
            g_before = glitch_report(net, num_vectors=vectors,
                                     seed=seed)
            p_before = timed_average_power(net, vectors,
                                           seed=seed).total
        with phase(PHASE_OPT):
            res = balance_paths(net)             # min-size buffers
        with phase(PHASE_SIM):
            g_after = glitch_report(net, num_vectors=vectors,
                                    seed=seed)
            p_after = timed_average_power(net, vectors,
                                          seed=seed).total
        # The caveat case: same circuit, full-size buffers.
        net_full = make()
        with phase(PHASE_OPT):
            balance_paths(net_full, buffer_size=1.0)
        with phase(PHASE_SIM):
            p_full = timed_average_power(net_full, vectors,
                                         seed=seed).total
        rows.append([name, g_before.glitch_power_fraction,
                     g_after.glitch_power_fraction, res.buffers_added,
                     res.depth_after - res.depth_before,
                     p_before * 1e6, p_after * 1e6, p_full * 1e6])
    return rows


def run(params=None):
    quick, seed = bench_params(params)
    vectors = scaled(96, quick, floor=48)
    rows = balance_sweep(vectors=vectors, seed=seed + 3)
    metrics = {}
    for (name, g_before, g_after, buffers, depth_delta,
         p0, p_min, p_full) in rows:
        metrics[f"{name}.glitch_fraction_before"] = g_before
        metrics[f"{name}.glitch_fraction_after"] = g_after
        metrics[f"{name}.buffers"] = buffers
        metrics[f"{name}.depth_delta"] = depth_delta
        metrics[f"{name}.power_uW"] = p0
        metrics[f"{name}.power_minbuf_uW"] = p_min
        metrics[f"{name}.power_fullbuf_uW"] = p_full
    return {"metrics": metrics, "vectors": vectors}


def bench_path_balance(benchmark):
    rows = benchmark.pedantic(balance_sweep, rounds=2, iterations=1)
    emit("E5: glitch fraction and net power of balancing "
         "(min-size vs full-size buffers)", format_table(
             ["circuit", "glitch before", "glitch after", "buffers",
              "depth delta", "power uW", "min-buf uW", "full-buf uW"],
             rows))
    for name, before, after, _b, ddelta, p0, p_min, p_full in rows:
        if name == "xorchain10":
            # Deliberately unbalanced chain: the pathological case.
            assert before > 0.5, (name, before)
        else:
            # Typical arithmetic circuits: the paper's 10–40% band.
            assert 0.10 < before < 0.55, (name, before)
        assert after < 0.02
        assert ddelta == 0                      # critical path held
        # Minimum-size buffers: net win on glitchy circuits.
        if before > 0.2:
            assert p_min < p0
        # The paper's caveat: full-size buffers can offset the saving.
        assert p_full > p_min
